//! Fixed-bucket integer histograms.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::Event;
use crate::observer::Observer;

/// Which event field a [`Histogram`] samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Stall ticks per miss ([`Event::Miss`]`::stall`).
    MissStall,
    /// Residual wait of late feedback ([`Event::Feedback`]`::remaining`,
    /// `Late` outcomes only).
    FeedbackRemaining,
    /// Prefetch lead time ([`Event::PrefetchIssued`]:
    /// `arrival - tick`).
    PrefetchLead,
    /// Episodes per replay batch ([`Event::ReplayStep`]`::replayed`).
    ReplayBatch,
}

impl Metric {
    /// Stable name for report headers.
    pub fn name(self) -> &'static str {
        match self {
            Metric::MissStall => "miss_stall",
            Metric::FeedbackRemaining => "feedback_remaining",
            Metric::PrefetchLead => "prefetch_lead",
            Metric::ReplayBatch => "replay_batch",
        }
    }

    fn sample(self, ev: &Event) -> Option<u64> {
        match (self, ev) {
            (Metric::MissStall, Event::Miss { stall, .. }) => Some(*stall),
            (
                Metric::FeedbackRemaining,
                Event::Feedback {
                    kind, remaining, ..
                },
            ) if kind.label() == "late" => Some(*remaining),
            (Metric::PrefetchLead, Event::PrefetchIssued { tick, arrival, .. }) => {
                Some(arrival.saturating_sub(*tick))
            }
            (Metric::ReplayBatch, Event::ReplayStep { replayed, .. }) => Some(*replayed),
            _ => None,
        }
    }
}

struct HistInner {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

/// A fixed-bucket histogram over one integer [`Metric`].
///
/// Bucket `i` counts samples `v < bounds[i]` (first matching bound);
/// a final overflow bucket catches the rest. Bounds are integers,
/// chosen at construction — no floating point anywhere (HNP04-clean
/// by construction).
///
/// Like [`Counters`](crate::Counters), the sink is a cloneable handle.
#[derive(Clone)]
pub struct Histogram {
    metric: Metric,
    inner: Rc<RefCell<HistInner>>,
}

impl Histogram {
    /// A histogram over `metric` with the given strictly-increasing
    /// upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing
    /// (construction-time contract; never fires mid-run).
    pub fn new(metric: Metric, bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Self {
            metric,
            inner: Rc::new(RefCell::new(HistInner {
                bounds,
                counts,
                total: 0,
                sum: 0,
            })),
        }
    }

    /// Power-of-two bounds up to `2^log2_max` — a serviceable default
    /// for latency-shaped metrics.
    pub fn exponential(metric: Metric, log2_max: u32) -> Self {
        Self::new(metric, (0..=log2_max).map(|i| 1u64 << i).collect())
    }

    /// The sampled metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// `(upper_bound, count)` pairs; the final pair uses `u64::MAX` as
    /// its bound (overflow bucket).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.inner
            .try_borrow()
            .map(|h| {
                h.bounds
                    .iter()
                    .copied()
                    .chain(std::iter::once(u64::MAX))
                    .zip(h.counts.iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of samples observed.
    pub fn total(&self) -> u64 {
        self.inner.try_borrow().map(|h| h.total).unwrap_or(0)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.try_borrow().map(|h| h.sum).unwrap_or(0)
    }

    /// Mean sample in thousandths (integer fixed-point).
    pub fn mean_milli(&self) -> u64 {
        self.sum()
            .saturating_mul(1000)
            .checked_div(self.total())
            .unwrap_or(0)
    }

    /// Records one sample directly (exporting components that do not
    /// go through an event stream may feed histograms by hand).
    pub fn observe(&self, v: u64) {
        if let Ok(mut h) = self.inner.try_borrow_mut() {
            let idx = h
                .bounds
                .iter()
                .position(|&b| v < b)
                .unwrap_or(h.bounds.len());
            h.counts[idx] += 1;
            h.total += 1;
            h.sum = h.sum.saturating_add(v);
        }
    }
}

impl Observer for Histogram {
    fn on_event(&mut self, ev: &Event) {
        if let Some(v) = self.metric.sample(ev) {
            self.observe(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FeedbackKind;

    #[test]
    fn buckets_partition_samples() {
        let h = Histogram::new(Metric::MissStall, vec![10, 100]);
        for v in [0, 9, 10, 99, 100, 5000] {
            h.observe(v);
        }
        let b = h.buckets();
        assert_eq!(b, vec![(10, 2), (100, 2), (u64::MAX, 2)]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 5218);
        assert_eq!(h.mean_milli(), 5218 * 1000 / 6);
    }

    #[test]
    fn samples_only_its_metric() {
        let mut h = Histogram::exponential(Metric::FeedbackRemaining, 8);
        h.on_event(&Event::Miss {
            tick: 0,
            page: 0,
            late: false,
            stall: 100,
        });
        assert_eq!(h.total(), 0, "miss stall is not this metric");
        h.on_event(&Event::Feedback {
            tick: 0,
            page: 0,
            kind: FeedbackKind::Late,
            remaining: 17,
        });
        h.on_event(&Event::Feedback {
            tick: 0,
            page: 0,
            kind: FeedbackKind::Useful,
            remaining: 0,
        });
        assert_eq!(h.total(), 1, "only Late feedback carries the metric");
    }

    #[test]
    fn prefetch_lead_is_arrival_minus_tick() {
        let mut h = Histogram::new(Metric::PrefetchLead, vec![50]);
        h.on_event(&Event::PrefetchIssued {
            tick: 10,
            page: 1,
            arrival: 40,
        });
        assert_eq!(h.sum(), 30);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_rejected() {
        let _ = Histogram::new(Metric::MissStall, vec![10, 10]);
    }
}
