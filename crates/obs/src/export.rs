//! JSONL / CSV export of the event stream, plus the escape helpers
//! shared by every report writer in the workspace (satellite: one
//! escape/format path).

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::{Event, Field};
use crate::observer::Observer;

/// Escapes `s` for inclusion inside a double-quoted JSON string,
/// appending to `out`. Handles quotes, backslashes, and control
/// characters; everything else passes through (the exporters only
/// ever see ASCII labels, but correctness is cheap).
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                let hex = b"0123456789abcdef";
                out.push(hex[(b as usize >> 4) & 0xf] as char);
                out.push(hex[b as usize & 0xf] as char);
            }
            c => out.push(c),
        }
    }
}

/// Quotes a CSV field if (and only if) it contains a comma, quote, or
/// newline, doubling embedded quotes per RFC 4180.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

fn push_field(out: &mut String, f: Field) {
    match f {
        Field::U64(v) => out.push_str(&v.to_string()),
        Field::I64(v) => out.push_str(&v.to_string()),
        Field::Bool(v) => out.push_str(if v { "true" } else { "false" }),
        Field::Str(v) => {
            out.push('"');
            json_escape(v, out);
            out.push('"');
        }
    }
}

/// Renders one event as a single JSON object line
/// (`{"event":"miss","tick":7,...}`).
pub fn event_to_jsonl(ev: &Event) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"event\":\"");
    json_escape(ev.kind().name(), &mut out);
    out.push('"');
    for (name, value) in ev.fields() {
        out.push_str(",\"");
        json_escape(name, &mut out);
        out.push_str("\":");
        push_field(&mut out, value);
    }
    out.push('}');
    out
}

/// Extracts the `"event"` kind from a JSONL line produced by
/// [`event_to_jsonl`]. Returns `None` for malformed lines.
pub fn jsonl_kind(line: &str) -> Option<&str> {
    let rest = line.split_once("\"event\":\"")?.1;
    rest.split_once('"').map(|(kind, _)| kind)
}

/// Extracts an unsigned-integer field from a JSONL line produced by
/// [`event_to_jsonl`]. Returns `None` when the key is absent or the
/// value is not a bare integer.
pub fn jsonl_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = line.split_once(needle.as_str())?.1;
    let digits: &str = rest
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// Buffers the event stream as JSON Lines. Cloneable handle; render
/// with [`render`](JsonlExporter::render) or write via
/// [`ReportSink`](crate::ReportSink).
#[derive(Clone, Default)]
pub struct JsonlExporter {
    lines: Rc<RefCell<Vec<String>>>,
}

impl JsonlExporter {
    /// An empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.try_borrow().map(|l| l.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .try_borrow()
            .map(|l| l.clone())
            .unwrap_or_default()
    }

    /// The whole stream, newline-terminated.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Ok(lines) = self.lines.try_borrow() {
            for l in lines.iter() {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    }
}

impl Observer for JsonlExporter {
    fn on_event(&mut self, ev: &Event) {
        if let Ok(mut l) = self.lines.try_borrow_mut() {
            l.push(event_to_jsonl(ev));
        }
    }
}

/// The fixed CSV schema: `event` plus the union of every payload
/// field, in taxonomy order. Events leave inapplicable columns blank.
pub const CSV_COLUMNS: &[&str] = &[
    "event",
    "tick",
    "step",
    "page",
    "late",
    "stall",
    "arrival",
    "outcome",
    "remaining",
    "replayed",
    "pressure",
    "from",
    "to",
    "novel",
    "domain",
    "fault",
    "at",
    "health_from",
    "health_to",
    "confidence_milli",
    "accuracy_milli",
    "overlap_milli",
    "weight_ops",
    "ticks",
    "accesses",
    "hits",
    "misses",
    "epoch",
    "tenant",
    "shard",
    "depth",
    "batch",
    "processed",
    "queued",
    "bytes",
    "restored",
];

/// Renders one event as a CSV row over [`CSV_COLUMNS`] (without the
/// header).
pub fn event_to_csv(ev: &Event) -> String {
    let fields = ev.fields();
    let mut cells: Vec<String> = Vec::with_capacity(CSV_COLUMNS.len());
    for &col in CSV_COLUMNS {
        if col == "event" {
            cells.push(csv_field(ev.kind().name()));
            continue;
        }
        match fields.iter().find(|&&(name, _)| name == col) {
            Some(&(_, Field::U64(v))) => cells.push(v.to_string()),
            Some(&(_, Field::I64(v))) => cells.push(v.to_string()),
            Some(&(_, Field::Bool(v))) => cells.push(if v { "true" } else { "false" }.to_string()),
            Some(&(_, Field::Str(v))) => cells.push(csv_field(v)),
            None => cells.push(String::new()),
        }
    }
    cells.join(",")
}

/// Buffers the event stream as CSV rows under the fixed
/// [`CSV_COLUMNS`] schema. Cloneable handle like [`JsonlExporter`].
#[derive(Clone, Default)]
pub struct CsvExporter {
    rows: Rc<RefCell<Vec<String>>>,
}

impl CsvExporter {
    /// An empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered data rows (header excluded).
    pub fn len(&self) -> usize {
        self.rows.try_borrow().map(|r| r.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Header plus all rows, newline-terminated.
    pub fn render(&self) -> String {
        let mut out = CSV_COLUMNS.join(",");
        out.push('\n');
        if let Ok(rows) = self.rows.try_borrow() {
            for r in rows.iter() {
                out.push_str(r);
                out.push('\n');
            }
        }
        out
    }
}

impl Observer for CsvExporter {
    fn on_event(&mut self, ev: &Event) {
        if let Ok(mut r) = self.rows.try_borrow_mut() {
            r.push(event_to_csv(ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FeedbackKind;

    #[test]
    fn jsonl_line_is_flat_and_typed() {
        let line = event_to_jsonl(&Event::Feedback {
            tick: 9,
            page: 4,
            kind: FeedbackKind::Late,
            remaining: 12,
        });
        assert_eq!(
            line,
            r#"{"event":"feedback","tick":9,"page":4,"outcome":"late","remaining":12}"#
        );
        assert_eq!(jsonl_kind(&line), Some("feedback"));
        assert_eq!(jsonl_u64(&line, "remaining"), Some(12));
        assert_eq!(jsonl_u64(&line, "absent"), None);
    }

    #[test]
    fn json_escape_handles_specials() {
        let mut out = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn csv_field_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_columns_cover_every_event_field() {
        let samples = [
            Event::Hit { tick: 0, page: 0 },
            Event::Miss {
                tick: 0,
                page: 0,
                late: false,
                stall: 0,
            },
            Event::PrefetchIssued {
                tick: 0,
                page: 0,
                arrival: 0,
            },
            Event::PrefetchDropped { tick: 0, page: 0 },
            Event::Feedback {
                tick: 0,
                page: 0,
                kind: FeedbackKind::Useful,
                remaining: 0,
            },
            Event::ReplayStep {
                step: 0,
                replayed: 0,
                pressure: 0,
            },
            Event::PhaseTransition {
                step: 0,
                from: -1,
                to: 0,
                novel: true,
            },
            Event::Fault {
                tick: 0,
                domain: 0,
                kind: crate::event::FaultKind::Crash,
            },
            Event::Degradation {
                at: 0,
                from: "healthy",
                to: "throttled",
            },
            Event::EpochSummary {
                step: 0,
                confidence_milli: 0,
                accuracy_milli: 0,
                replayed: 0,
                overlap_milli: 0,
                weight_ops: 0,
            },
            Event::RunEnd {
                ticks: 0,
                accesses: 0,
                hits: 0,
                misses: 0,
            },
            Event::ServeEnqueue {
                epoch: 0,
                tenant: 0,
                shard: 0,
                depth: 0,
            },
            Event::ServeShed {
                epoch: 0,
                tenant: 0,
                shard: 0,
            },
            Event::ServeFlush {
                epoch: 0,
                shard: 0,
                batch: 0,
            },
            Event::ShardEpoch {
                epoch: 0,
                shard: 0,
                processed: 0,
                queued: 0,
            },
            Event::Snapshot {
                epoch: 0,
                tenant: 0,
                bytes: 0,
                restored: false,
            },
        ];
        for ev in &samples {
            for (name, _) in ev.fields() {
                assert!(
                    CSV_COLUMNS.contains(&name),
                    "field `{name}` of {:?} missing from CSV_COLUMNS",
                    ev.kind()
                );
            }
            assert!(event_to_csv(ev).split(',').count() >= CSV_COLUMNS.len());
        }
    }

    #[test]
    fn exporters_buffer_in_order() {
        let j = JsonlExporter::new();
        let c = CsvExporter::new();
        let mut js = j.clone();
        let mut cs = c.clone();
        for i in 0..3u64 {
            let ev = Event::Hit { tick: i, page: i };
            js.on_event(&ev);
            cs.on_event(&ev);
        }
        assert_eq!(j.len(), 3);
        assert!(j.lines()[2].contains("\"tick\":2"));
        let csv = c.render();
        assert!(csv.starts_with("event,tick,"));
        assert_eq!(csv.lines().count(), 4, "header + 3 rows");
    }
}
