//! The typed event taxonomy (DESIGN.md §10.1).
//!
//! Events carry only integers, booleans, and `&'static str` labels so
//! that the stream itself obeys the workspace determinism and
//! integer-purity rules: fractional quantities (confidence, accuracy,
//! activation overlap) are scaled to thousandths and carried as
//! `*_milli` fields.

/// Outcome of an issued prefetch, mirrored from the simulator's
/// feedback channel (`memsim::PrefetchFeedback`) without the
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FeedbackKind {
    /// Demanded while resident.
    Useful,
    /// Demanded while still in flight.
    Late,
    /// Evicted untouched (pollution).
    Unused,
    /// Cancelled in flight by a fault.
    Cancelled,
}

impl FeedbackKind {
    /// Stable lowercase label used in exports and counter keys.
    pub fn label(self) -> &'static str {
        match self {
            FeedbackKind::Useful => "useful",
            FeedbackKind::Late => "late",
            FeedbackKind::Unused => "unused",
            FeedbackKind::Cancelled => "cancelled",
        }
    }
}

/// What kind of fault the injector delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A node/device crashed and lost local state.
    Crash,
    /// The crashed domain came back up.
    Restart,
    /// An outstanding transfer exceeded its deadline.
    Timeout,
    /// A failed operation was retried.
    Retry,
    /// A transfer was dropped in flight.
    Drop,
}

impl FaultKind {
    /// Stable lowercase label used in exports and counter keys.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Restart => "restart",
            FaultKind::Timeout => "timeout",
            FaultKind::Retry => "retry",
            FaultKind::Drop => "drop",
        }
    }
}

/// One observable simulator/model occurrence.
///
/// `tick` is the emitting component's simulated clock; `step` counts
/// training/inference steps where no shared clock exists. `domain`
/// identifies the node (disaggregated cluster) or device (UVM) an
/// event belongs to; single-node simulators use 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A demand access was served from resident memory.
    Hit {
        /// Simulated tick.
        tick: u64,
        /// Page number.
        page: u64,
    },
    /// A demand access missed. `late` marks a miss that caught an
    /// in-flight prefetch; `stall` is the latency charged.
    Miss {
        /// Simulated tick.
        tick: u64,
        /// Page number.
        page: u64,
        /// True when an in-flight prefetch partially covered the miss.
        late: bool,
        /// Stall ticks charged to the access.
        stall: u64,
    },
    /// The simulator accepted a prefetch candidate.
    PrefetchIssued {
        /// Simulated tick.
        tick: u64,
        /// Page number.
        page: u64,
        /// Tick at which the page becomes resident.
        arrival: u64,
    },
    /// A prefetch candidate was dropped at the bandwidth cap.
    PrefetchDropped {
        /// Simulated tick.
        tick: u64,
        /// Page number.
        page: u64,
    },
    /// Outcome feedback for an issued prefetch.
    Feedback {
        /// Simulated tick.
        tick: u64,
        /// Page number.
        page: u64,
        /// Outcome class.
        kind: FeedbackKind,
        /// For [`FeedbackKind::Late`]: residual wait ticks. 0 otherwise.
        remaining: u64,
    },
    /// A hippocampal replay batch was applied to the neocortex.
    ReplayStep {
        /// Training step at which replay ran.
        step: u64,
        /// Episodes replayed in this batch.
        replayed: u64,
        /// Episodes buffered and still awaiting replay (pressure).
        pressure: u64,
    },
    /// The phase detector switched clusters.
    PhaseTransition {
        /// Training step.
        step: u64,
        /// Previous phase id, or -1 before the first phase.
        from: i64,
        /// New phase id.
        to: i64,
        /// True when `to` was newly created.
        novel: bool,
    },
    /// A fault was injected (or a recovery action taken).
    Fault {
        /// Simulated tick.
        tick: u64,
        /// Node/device the fault hit.
        domain: u64,
        /// Fault class.
        kind: FaultKind,
    },
    /// The resilience wrapper moved along its degradation ladder.
    Degradation {
        /// Feedback-sequence position of the transition.
        at: u64,
        /// Previous health state label.
        from: &'static str,
        /// New health state label.
        to: &'static str,
    },
    /// Periodic model telemetry (confidence, replay, k-WTA activity).
    EpochSummary {
        /// Training step closing the epoch.
        step: u64,
        /// Confidence EMA, in thousandths.
        confidence_milli: u64,
        /// Windowed accuracy, in thousandths.
        accuracy_milli: u64,
        /// Cumulative episodes replayed.
        replayed: u64,
        /// Mean k-WTA winner overlap with the previous step, in
        /// thousandths of the active set.
        overlap_milli: u64,
        /// Cumulative integer weight-update operations.
        weight_ops: u64,
    },
    /// End of a run: closing totals.
    RunEnd {
        /// Final simulated tick.
        ticks: u64,
        /// Accesses replayed.
        accesses: u64,
        /// Demand hits.
        hits: u64,
        /// Demand misses (full + late).
        misses: u64,
    },
    /// The serving engine admitted a request into a shard queue.
    ServeEnqueue {
        /// Serving epoch at which the request arrived.
        epoch: u64,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Shard the tenant hashes to.
        shard: u64,
        /// Queue depth after the enqueue.
        depth: u64,
    },
    /// Admission control shed a request at a full shard queue.
    ServeShed {
        /// Serving epoch at which the request arrived.
        epoch: u64,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Shard whose queue was full.
        shard: u64,
    },
    /// A shard flushed a batch of queued requests to its worker.
    ServeFlush {
        /// Serving epoch of the flush.
        epoch: u64,
        /// Shard that flushed.
        shard: u64,
        /// Requests in the flushed batch.
        batch: u64,
    },
    /// Per-shard close of a serving epoch.
    ShardEpoch {
        /// Serving epoch just closed.
        epoch: u64,
        /// Shard reporting.
        shard: u64,
        /// Requests the shard processed this epoch.
        processed: u64,
        /// Requests still queued after the epoch.
        queued: u64,
    },
    /// A tenant model snapshot was taken — or restored on warm-start.
    Snapshot {
        /// Serving epoch of the snapshot action.
        epoch: u64,
        /// Tenant whose model was captured/restored.
        tenant: u64,
        /// Encoded snapshot size in bytes.
        bytes: u64,
        /// False for a capture, true for a warm-start restore.
        restored: bool,
    },
}

/// Discriminant of an [`Event`], used for counter keys and filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// [`Event::Hit`].
    Hit,
    /// [`Event::Miss`].
    Miss,
    /// [`Event::PrefetchIssued`].
    PrefetchIssued,
    /// [`Event::PrefetchDropped`].
    PrefetchDropped,
    /// [`Event::Feedback`].
    Feedback,
    /// [`Event::ReplayStep`].
    ReplayStep,
    /// [`Event::PhaseTransition`].
    PhaseTransition,
    /// [`Event::Fault`].
    Fault,
    /// [`Event::Degradation`].
    Degradation,
    /// [`Event::EpochSummary`].
    EpochSummary,
    /// [`Event::RunEnd`].
    RunEnd,
    /// [`Event::ServeEnqueue`].
    ServeEnqueue,
    /// [`Event::ServeShed`].
    ServeShed,
    /// [`Event::ServeFlush`].
    ServeFlush,
    /// [`Event::ShardEpoch`].
    ShardEpoch,
    /// [`Event::Snapshot`].
    Snapshot,
}

impl EventKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [EventKind; 16] = [
        EventKind::Hit,
        EventKind::Miss,
        EventKind::PrefetchIssued,
        EventKind::PrefetchDropped,
        EventKind::Feedback,
        EventKind::ReplayStep,
        EventKind::PhaseTransition,
        EventKind::Fault,
        EventKind::Degradation,
        EventKind::EpochSummary,
        EventKind::RunEnd,
        EventKind::ServeEnqueue,
        EventKind::ServeShed,
        EventKind::ServeFlush,
        EventKind::ShardEpoch,
        EventKind::Snapshot,
    ];

    /// Stable snake_case name used in exports and counter keys.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Hit => "hit",
            EventKind::Miss => "miss",
            EventKind::PrefetchIssued => "prefetch_issued",
            EventKind::PrefetchDropped => "prefetch_dropped",
            EventKind::Feedback => "feedback",
            EventKind::ReplayStep => "replay_step",
            EventKind::PhaseTransition => "phase_transition",
            EventKind::Fault => "fault",
            EventKind::Degradation => "degradation",
            EventKind::EpochSummary => "epoch_summary",
            EventKind::RunEnd => "run_end",
            EventKind::ServeEnqueue => "serve_enqueue",
            EventKind::ServeShed => "serve_shed",
            EventKind::ServeFlush => "serve_flush",
            EventKind::ShardEpoch => "shard_epoch",
            EventKind::Snapshot => "snapshot",
        }
    }
}

/// A single exported field value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Static label.
    Str(&'static str),
}

impl Event {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Hit { .. } => EventKind::Hit,
            Event::Miss { .. } => EventKind::Miss,
            Event::PrefetchIssued { .. } => EventKind::PrefetchIssued,
            Event::PrefetchDropped { .. } => EventKind::PrefetchDropped,
            Event::Feedback { .. } => EventKind::Feedback,
            Event::ReplayStep { .. } => EventKind::ReplayStep,
            Event::PhaseTransition { .. } => EventKind::PhaseTransition,
            Event::Fault { .. } => EventKind::Fault,
            Event::Degradation { .. } => EventKind::Degradation,
            Event::EpochSummary { .. } => EventKind::EpochSummary,
            Event::RunEnd { .. } => EventKind::RunEnd,
            Event::ServeEnqueue { .. } => EventKind::ServeEnqueue,
            Event::ServeShed { .. } => EventKind::ServeShed,
            Event::ServeFlush { .. } => EventKind::ServeFlush,
            Event::ShardEpoch { .. } => EventKind::ShardEpoch,
            Event::Snapshot { .. } => EventKind::Snapshot,
        }
    }

    /// Flat `(name, value)` view of the payload, in declaration order —
    /// the single source of truth for both exporters.
    pub fn fields(&self) -> Vec<(&'static str, Field)> {
        match *self {
            Event::Hit { tick, page } => {
                vec![("tick", Field::U64(tick)), ("page", Field::U64(page))]
            }
            Event::Miss {
                tick,
                page,
                late,
                stall,
            } => vec![
                ("tick", Field::U64(tick)),
                ("page", Field::U64(page)),
                ("late", Field::Bool(late)),
                ("stall", Field::U64(stall)),
            ],
            Event::PrefetchIssued {
                tick,
                page,
                arrival,
            } => vec![
                ("tick", Field::U64(tick)),
                ("page", Field::U64(page)),
                ("arrival", Field::U64(arrival)),
            ],
            Event::PrefetchDropped { tick, page } => {
                vec![("tick", Field::U64(tick)), ("page", Field::U64(page))]
            }
            Event::Feedback {
                tick,
                page,
                kind,
                remaining,
            } => vec![
                ("tick", Field::U64(tick)),
                ("page", Field::U64(page)),
                ("outcome", Field::Str(kind.label())),
                ("remaining", Field::U64(remaining)),
            ],
            Event::ReplayStep {
                step,
                replayed,
                pressure,
            } => vec![
                ("step", Field::U64(step)),
                ("replayed", Field::U64(replayed)),
                ("pressure", Field::U64(pressure)),
            ],
            Event::PhaseTransition {
                step,
                from,
                to,
                novel,
            } => vec![
                ("step", Field::U64(step)),
                ("from", Field::I64(from)),
                ("to", Field::I64(to)),
                ("novel", Field::Bool(novel)),
            ],
            Event::Fault { tick, domain, kind } => vec![
                ("tick", Field::U64(tick)),
                ("domain", Field::U64(domain)),
                ("fault", Field::Str(kind.label())),
            ],
            Event::Degradation { at, from, to } => vec![
                ("at", Field::U64(at)),
                ("health_from", Field::Str(from)),
                ("health_to", Field::Str(to)),
            ],
            Event::EpochSummary {
                step,
                confidence_milli,
                accuracy_milli,
                replayed,
                overlap_milli,
                weight_ops,
            } => vec![
                ("step", Field::U64(step)),
                ("confidence_milli", Field::U64(confidence_milli)),
                ("accuracy_milli", Field::U64(accuracy_milli)),
                ("replayed", Field::U64(replayed)),
                ("overlap_milli", Field::U64(overlap_milli)),
                ("weight_ops", Field::U64(weight_ops)),
            ],
            Event::RunEnd {
                ticks,
                accesses,
                hits,
                misses,
            } => vec![
                ("ticks", Field::U64(ticks)),
                ("accesses", Field::U64(accesses)),
                ("hits", Field::U64(hits)),
                ("misses", Field::U64(misses)),
            ],
            Event::ServeEnqueue {
                epoch,
                tenant,
                shard,
                depth,
            } => vec![
                ("epoch", Field::U64(epoch)),
                ("tenant", Field::U64(tenant)),
                ("shard", Field::U64(shard)),
                ("depth", Field::U64(depth)),
            ],
            Event::ServeShed {
                epoch,
                tenant,
                shard,
            } => vec![
                ("epoch", Field::U64(epoch)),
                ("tenant", Field::U64(tenant)),
                ("shard", Field::U64(shard)),
            ],
            Event::ServeFlush {
                epoch,
                shard,
                batch,
            } => vec![
                ("epoch", Field::U64(epoch)),
                ("shard", Field::U64(shard)),
                ("batch", Field::U64(batch)),
            ],
            Event::ShardEpoch {
                epoch,
                shard,
                processed,
                queued,
            } => vec![
                ("epoch", Field::U64(epoch)),
                ("shard", Field::U64(shard)),
                ("processed", Field::U64(processed)),
                ("queued", Field::U64(queued)),
            ],
            Event::Snapshot {
                epoch,
                tenant,
                bytes,
                restored,
            } => vec![
                ("epoch", Field::U64(epoch)),
                ("tenant", Field::U64(tenant)),
                ("bytes", Field::U64(bytes)),
                ("restored", Field::Bool(restored)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique_and_snake_case() {
        let names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names
            .iter()
            .all(|n| n.chars().all(|c| c.is_ascii_lowercase() || c == '_')));
    }

    #[test]
    fn fields_match_declared_kind() {
        let ev = Event::Miss {
            tick: 7,
            page: 42,
            late: true,
            stall: 3,
        };
        assert_eq!(ev.kind(), EventKind::Miss);
        let fields = ev.fields();
        assert_eq!(fields[0], ("tick", Field::U64(7)));
        assert_eq!(fields[2], ("late", Field::Bool(true)));
    }
}
