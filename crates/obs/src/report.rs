//! `ReportSink`: the one place artifacts get written.
//!
//! Figures, the fault-injection reports, and the obs exporters all
//! used to hand-roll directory creation, error handling, and escaping.
//! `ReportSink` centralizes that: create-dir-if-needed, best-effort
//! writes (a read-only filesystem degrades a run to console output,
//! it never aborts one), and one `[artifact] <path>` line per file so
//! harnesses can collect outputs.

use std::fs;
use std::path::{Path, PathBuf};

use crate::export::{CsvExporter, JsonlExporter};

/// A best-effort artifact writer rooted at one directory.
#[derive(Debug, Clone)]
pub struct ReportSink {
    dir: PathBuf,
}

impl ReportSink {
    /// A sink rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The conventional checked-in results directory (`results/`).
    pub fn results() -> Self {
        Self::new("results")
    }

    /// The conventional experiment scratch directory
    /// (`$CARGO_TARGET_DIR/experiments`, defaulting to
    /// `target/experiments`).
    pub fn experiments() -> Self {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        Self::new(Path::new(&target).join("experiments"))
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `contents` to `<dir>/<name>`, printing an
    /// `[artifact] <path>` marker. Failures are reported to stderr and
    /// swallowed (best effort); returns the path on success.
    pub fn write_text(&self, name: &str, contents: &str) -> Option<PathBuf> {
        let path = self.dir.join(name);
        if let Err(e) = fs::create_dir_all(&self.dir) {
            eprintln!("[report] cannot create {}: {e}", self.dir.display());
            return None;
        }
        match fs::write(&path, contents) {
            Ok(()) => {
                println!("[artifact] {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("[report] cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Writes a buffered JSONL event stream.
    pub fn write_jsonl(&self, name: &str, exporter: &JsonlExporter) -> Option<PathBuf> {
        self.write_text(name, &exporter.render())
    }

    /// Writes a buffered CSV event stream (with header).
    pub fn write_csv(&self, name: &str, exporter: &CsvExporter) -> Option<PathBuf> {
        self.write_text(name, &exporter.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::observer::Observer;

    #[test]
    fn writes_under_the_root_and_returns_path() {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        let dir = Path::new(&target).join("obs-report-test");
        let sink = ReportSink::new(&dir);
        let path = sink.write_text("probe.txt", "hello\n").expect("writable");
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_roundtrip_through_sink() {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        let dir = Path::new(&target).join("obs-report-test-jsonl");
        let j = JsonlExporter::new();
        j.clone().on_event(&Event::Hit { tick: 1, page: 2 });
        let sink = ReportSink::new(&dir);
        let path = sink.write_jsonl("events.jsonl", &j).expect("writable");
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"event\":\"hit\",\"tick\":1,\"page\":2}\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
