//! The counter sink: event counts keyed by kind and sub-kind.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::{Event, EventKind};
use crate::observer::Observer;

/// Counts events by kind, with per-outcome sub-keys for misses
/// (`miss_full`/`miss_late`), feedback (`feedback_useful`, ...) and
/// faults (`fault_crash`, ...), plus two accumulators: `stall_ticks`
/// (total miss stall) and `ticks` (final clock, from
/// [`Event::RunEnd`]).
///
/// The sink is a cloneable handle: attach one clone to a [`Registry`]
/// (via [`Registry::attach`]) and read the other after the run.
///
/// [`Registry`]: crate::Registry
/// [`Registry::attach`]: crate::Registry::attach
#[derive(Clone, Default)]
pub struct Counters {
    inner: Rc<RefCell<BTreeMap<&'static str, u64>>>,
}

impl Counters {
    /// An empty counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The count under `key` (an [`EventKind::name`] or sub-key).
    pub fn get(&self, key: &str) -> u64 {
        self.inner
            .try_borrow()
            .ok()
            .and_then(|m| m.get(key).copied())
            .unwrap_or(0)
    }

    /// The count for a whole event kind.
    pub fn of_kind(&self, kind: EventKind) -> u64 {
        self.get(kind.name())
    }

    /// All non-zero counters, sorted by key.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .try_borrow()
            .map(|m| m.iter().map(|(&k, &v)| (k, v)).collect())
            .unwrap_or_default()
    }

    fn bump(&self, key: &'static str, by: u64) {
        if let Ok(mut m) = self.inner.try_borrow_mut() {
            *m.entry(key).or_insert(0) += by;
        }
    }

    fn set(&self, key: &'static str, value: u64) {
        if let Ok(mut m) = self.inner.try_borrow_mut() {
            m.insert(key, value);
        }
    }
}

impl Observer for Counters {
    fn on_event(&mut self, ev: &Event) {
        self.bump(ev.kind().name(), 1);
        match *ev {
            Event::Miss { late, stall, .. } => {
                self.bump(if late { "miss_late" } else { "miss_full" }, 1);
                self.bump("stall_ticks", stall);
            }
            Event::Feedback { kind, .. } => {
                let key = match kind.label() {
                    "useful" => "feedback_useful",
                    "late" => "feedback_late",
                    "unused" => "feedback_unused",
                    _ => "feedback_cancelled",
                };
                self.bump(key, 1);
            }
            Event::Fault { kind, .. } => {
                let key = match kind.label() {
                    "crash" => "fault_crash",
                    "restart" => "fault_restart",
                    "timeout" => "fault_timeout",
                    "retry" => "fault_retry",
                    _ => "fault_drop",
                };
                self.bump(key, 1);
            }
            Event::ReplayStep { replayed, .. } => self.bump("replayed_episodes", replayed),
            Event::RunEnd { ticks, .. } => self.set("ticks", ticks),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, FeedbackKind};
    use crate::observer::Registry;

    #[test]
    fn counts_kinds_and_subkinds() {
        let reg = Registry::new();
        let c = Counters::new();
        reg.attach(c.clone());
        reg.emit(&Event::Hit { tick: 1, page: 1 });
        reg.emit(&Event::Miss {
            tick: 2,
            page: 2,
            late: false,
            stall: 100,
        });
        reg.emit(&Event::Miss {
            tick: 3,
            page: 3,
            late: true,
            stall: 40,
        });
        reg.emit(&Event::Feedback {
            tick: 4,
            page: 2,
            kind: FeedbackKind::Useful,
            remaining: 0,
        });
        reg.emit(&Event::Fault {
            tick: 5,
            domain: 1,
            kind: FaultKind::Crash,
        });
        reg.emit(&Event::RunEnd {
            ticks: 999,
            accesses: 3,
            hits: 1,
            misses: 2,
        });
        assert_eq!(c.of_kind(EventKind::Hit), 1);
        assert_eq!(c.of_kind(EventKind::Miss), 2);
        assert_eq!(c.get("miss_full"), 1);
        assert_eq!(c.get("miss_late"), 1);
        assert_eq!(c.get("stall_ticks"), 140);
        assert_eq!(c.get("feedback_useful"), 1);
        assert_eq!(c.get("fault_crash"), 1);
        assert_eq!(c.get("ticks"), 999);
        assert_eq!(c.get("nonexistent"), 0);
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let c = Counters::new();
        let mut sink = c.clone();
        sink.on_event(&Event::Hit { tick: 0, page: 0 });
        sink.on_event(&Event::RunEnd {
            ticks: 5,
            accesses: 1,
            hits: 1,
            misses: 0,
        });
        let snap = c.snapshot();
        let keys: Vec<&str> = snap.iter().map(|&(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
