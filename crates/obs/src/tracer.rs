//! The ring-buffer event tracer: the last N events, cheaply.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::Event;
use crate::observer::Observer;

struct RingInner {
    cap: usize,
    buf: VecDeque<Event>,
    seen: u64,
}

/// Keeps the most recent `capacity` events — the "flight recorder"
/// for post-mortem inspection of a run's tail without the memory cost
/// of a full trace. A cloneable handle like the other sinks.
#[derive(Clone)]
pub struct RingTracer {
    inner: Rc<RefCell<RingInner>>,
}

impl RingTracer {
    /// A tracer holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            inner: Rc::new(RefCell::new(RingInner {
                cap,
                buf: VecDeque::with_capacity(cap),
                seen: 0,
            })),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .try_borrow()
            .map(|r| r.buf.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Total events observed (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.inner.try_borrow().map(|r| r.seen).unwrap_or(0)
    }
}

impl Observer for RingTracer {
    fn on_event(&mut self, ev: &Event) {
        if let Ok(mut r) = self.inner.try_borrow_mut() {
            if r.buf.len() == r.cap {
                r.buf.pop_front();
            }
            r.buf.push_back(ev.clone());
            r.seen += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_tail() {
        let t = RingTracer::new(3);
        let mut sink = t.clone();
        for i in 0..10u64 {
            sink.on_event(&Event::Hit { tick: i, page: i });
        }
        assert_eq!(t.seen(), 10);
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0], Event::Hit { tick: 7, page: 7 });
        assert_eq!(evs[2], Event::Hit { tick: 9, page: 9 });
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let t = RingTracer::new(0);
        let mut sink = t.clone();
        sink.on_event(&Event::Hit { tick: 1, page: 1 });
        sink.on_event(&Event::Hit { tick: 2, page: 2 });
        assert_eq!(t.events(), vec![Event::Hit { tick: 2, page: 2 }]);
    }
}
