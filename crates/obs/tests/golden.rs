//! Golden-file tests: the exporter wire formats are frozen. If these
//! fail, downstream consumers of `events.jsonl` / `events.csv` break —
//! change the goldens only with a deliberate format bump.

use hnp_obs::{CsvExporter, Event, FaultKind, FeedbackKind, JsonlExporter, Observer, Registry};

/// One event of every kind, in taxonomy order, with distinctive
/// payloads so column mix-ups are visible in the diff.
fn sample_stream() -> Vec<Event> {
    vec![
        Event::Hit { tick: 1, page: 10 },
        Event::Miss {
            tick: 2,
            page: 11,
            late: false,
            stall: 100,
        },
        Event::PrefetchIssued {
            tick: 3,
            page: 12,
            arrival: 103,
        },
        Event::PrefetchDropped { tick: 4, page: 13 },
        Event::Feedback {
            tick: 5,
            page: 12,
            kind: FeedbackKind::Late,
            remaining: 42,
        },
        Event::ReplayStep {
            step: 6,
            replayed: 8,
            pressure: 3,
        },
        Event::PhaseTransition {
            step: 7,
            from: -1,
            to: 2,
            novel: true,
        },
        Event::Fault {
            tick: 8,
            domain: 1,
            kind: FaultKind::Crash,
        },
        Event::Degradation {
            at: 9,
            from: "healthy",
            to: "throttled",
        },
        Event::EpochSummary {
            step: 10,
            confidence_milli: 875,
            accuracy_milli: 920,
            replayed: 64,
            overlap_milli: 333,
            weight_ops: 123456,
        },
        Event::RunEnd {
            ticks: 9999,
            accesses: 2000,
            hits: 1500,
            misses: 500,
        },
        Event::ServeEnqueue {
            epoch: 11,
            tenant: 3,
            shard: 2,
            depth: 5,
        },
        Event::ServeShed {
            epoch: 12,
            tenant: 4,
            shard: 1,
        },
        Event::ServeFlush {
            epoch: 13,
            shard: 2,
            batch: 16,
        },
        Event::ShardEpoch {
            epoch: 14,
            shard: 0,
            processed: 32,
            queued: 7,
        },
        Event::Snapshot {
            epoch: 15,
            tenant: 3,
            bytes: 40960,
            restored: true,
        },
    ]
}

#[test]
fn jsonl_export_matches_golden() {
    let reg = Registry::new();
    let jsonl = JsonlExporter::new();
    reg.attach(jsonl.clone());
    for ev in sample_stream() {
        reg.emit(&ev);
    }
    assert_eq!(jsonl.render(), include_str!("golden/events.jsonl"));
}

#[test]
fn csv_export_matches_golden() {
    let mut csv = CsvExporter::new();
    for ev in sample_stream() {
        csv.on_event(&ev);
    }
    assert_eq!(csv.render(), include_str!("golden/events.csv"));
}

#[test]
fn golden_jsonl_lines_parse_back() {
    for line in include_str!("golden/events.jsonl").lines() {
        assert!(
            hnp_obs::jsonl_kind(line).is_some(),
            "unparseable line: {line}"
        );
    }
}

/// One-off regeneration helper: `cargo test -p hnp-obs --test golden
/// -- --ignored regen` rewrites the goldens from the current format.
#[test]
#[ignore]
fn regen_goldens() {
    let mut jsonl = JsonlExporter::new();
    let mut csv = CsvExporter::new();
    for ev in sample_stream() {
        jsonl.on_event(&ev);
        csv.on_event(&ev);
    }
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/events.jsonl"),
        jsonl.render(),
    )
    .unwrap();
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/events.csv"),
        csv.render(),
    )
    .unwrap();
}
