//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored serde stub.
//!
//! Uses only the built-in `proc_macro` API (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this repo actually
//! derives: non-generic structs with named fields. Anything else
//! produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

/// Parses `struct Name { fields... }` out of a derive input stream,
/// skipping attributes, doc comments, and visibility modifiers.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut trees = input.into_iter().peekable();
    // Find the `struct` keyword at top level.
    loop {
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (incl. doc comments): `#` or `#!` + group.
                match trees.peek() {
                    Some(TokenTree::Punct(b)) if b.as_char() == '!' => {
                        trees.next();
                    }
                    _ => {}
                }
                trees.next(); // The bracketed attribute body.
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("serde stub derives support structs only, not enums".into());
            }
            Some(_) => {}
            None => return Err("no `struct` found in derive input".into()),
        }
    }
    let name = match trees.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, got {other:?}")),
    };
    let body = match trees.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("serde stub derives do not support generics on `{name}`"));
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("serde stub derives do not support tuple struct `{name}`"));
        }
        other => return Err(format!("expected struct body for `{name}`, got {other:?}")),
    };

    let mut fields = Vec::new();
    let mut trees = body.into_iter().peekable();
    'fields: loop {
        // Skip per-field attributes and visibility.
        let field_name = loop {
            match trees.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    trees.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = trees.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            trees.next(); // `pub(crate)` etc.
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
                None => break 'fields,
            }
        };
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field_name}`, got {other:?}")),
        }
        fields.push(field_name);
        // Skip the type: everything up to a comma outside angle brackets.
        let mut angle_depth = 0i32;
        loop {
            match trees.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    Ok(StructShape { name, fields })
}

/// Derives `serde::Serialize` (the stub's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the stub's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let inits: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\n\
                     v.get_field({f:?})\n\
                         .ok_or_else(|| ::serde::DeError::missing({f:?}))?,\n\
                 )?,\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError>\n\
             {{\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
