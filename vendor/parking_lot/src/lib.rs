//! Offline stub of `parking_lot`: poison-free `Mutex`/`RwLock`
//! wrappers over `std::sync`, exposing the `parking_lot` calling
//! convention (`lock()` returns the guard directly).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquires never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
