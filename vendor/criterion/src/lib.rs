//! Offline stub of the `criterion` API surface this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! and the `criterion_group!`/`criterion_main!` macros. Benchmarks run
//! a fixed-length wall-clock measurement (no statistics, outlier
//! rejection, or HTML reports) and print mean ns/iter — enough to
//! compare orders of magnitude and to keep `cargo bench` compiling and
//! runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            name: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first warming up briefly, then measuring for a fixed
    /// budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly the measurement budget.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) / u128::from(calib_iters.max(1));
        let budget_ns = 250_000_000u128;
        let iters = (budget_ns / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!(
            "{}/{:<40} {:>14.1} ns/iter ({} iters)",
            self.name, id, ns_per_iter, b.iters
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
