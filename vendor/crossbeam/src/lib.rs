//! Offline stub of `crossbeam`. The workspace declares the dependency
//! but currently only needs scoped threads, which `std::thread::scope`
//! provides; `crossbeam::scope` forwards to it.

/// Runs `f` with a scope in which borrowed threads can be spawned,
/// mirroring `crossbeam::scope`'s shape via `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins() {
        let mut total = 0;
        super::scope(|s| {
            let h = s.spawn(|| 21);
            total = h.join().expect("join") + 21;
        })
        .expect("scope");
        assert_eq!(total, 42);
    }
}
