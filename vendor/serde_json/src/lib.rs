//! Offline stub of the `serde_json` API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `to_writer`, `from_str`, and the
//! `Result`/`Error` pair. Prints and parses the [`serde::Value`] tree
//! of the vendored serde stub.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Number, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- Printing ----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: &Number, out: &mut String) {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // Upstream errors on non-finite floats; a null is the
                // most serviceable degradation for experiment logs.
                out.push_str("null");
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => number_into(n, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns I/O errors from the writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("io error: {e}")))
}

/// Parses a value of `T` out of JSON text.
///
/// # Errors
///
/// Returns a parse or shape error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s).map_err(Error)?;
    Ok(T::from_value(&value)?)
}

mod parse {
    use serde::{Number, Value};

    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn literal(&mut self, word: &str) -> bool {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                true
            } else {
                false
            }
        }

        pub fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') if self.literal("null") => Ok(Value::Null),
                Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(
                                    char::from_u32(code).ok_or("invalid \\u escape")?,
                                );
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("empty string tail")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| e.to_string())?;
            if !is_float {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::Num(Number::U(u)));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Num(Number::I(i)));
                }
            }
            text.parse::<f64>()
                .map(|f| Value::Num(Number::F(f)))
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(format!("expected , or ] but found {other:?}")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => return Err(format!("expected , or }} but found {other:?}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(u64, u16)> = vec![(1, 2), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u64, u16)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_spacing_matches_upstream() {
        #[derive(Debug)]
        struct T;
        impl Serialize for T {
            fn to_value(&self) -> Value {
                Value::Object(vec![("x".to_string(), 7u32.to_value())])
            }
        }
        assert_eq!(to_string_pretty(&T).unwrap(), "{\n  \"x\": 7\n}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("nope").is_err());
        assert!(from_str::<Vec<u64>>("[1] junk").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\u{1}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_float_numbers() {
        let s = to_string(&(-5i64)).unwrap();
        assert_eq!(s, "-5");
        let f: f64 = from_str("2.5").unwrap();
        assert!((f - 2.5).abs() < 1e-12);
    }
}
