//! Offline stub of the `serde` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides a minimal tree-based serialization model: values
//! serialize into a JSON-like [`Value`] tree and deserialize back out
//! of one. The derive macros (`#[derive(Serialize)]`,
//! `#[derive(Deserialize)]`) are re-exported from the sibling
//! hand-rolled `serde_derive` proc-macro crate and cover plain structs
//! with named fields — exactly the shapes this repo serializes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Numeric payload of a [`Value::Num`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed integer (only used for negatives).
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A "missing field" error.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls ---------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

// ---- Deserialize impls -------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(Number::U(u)) => *u as i128,
                    Value::Num(Number::I(i)) => *i as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(Number::F(f)) => Ok(*f),
            Value::Num(Number::U(u)) => Ok(*u as f64),
            Value::Num(Number::I(i)) => Ok(*i as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    )+};
}
de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D)
);
