//! Offline stub of the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` macro, range/tuple/`any`/`vec`
//! strategies, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic seed (overridable via `PROPTEST_SEED`); there is no
//! shrinking — failures report the case number, seed, and generated
//! inputs instead.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-case result used by the generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The base seed for a property run (`PROPTEST_SEED` overrides).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9d5f_7c3a_11e8_24b7)
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `Just(v)`: always yields a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! strategy_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
strategy_tuple!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, StdRng};
    use rand::Rng;

    /// Size bounds accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// Mirrors upstream's `prop` module alias.
    pub use crate as prop;
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// The property-test entry macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::base_seed();
            let mut rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (seed {:#x}): {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        seed,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u64..9,
            v in crate::collection::vec(0i32..5, 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, crate::collection::vec(any::<u16>(), 1..3))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..2) {
                prop_assert!(false, "boom");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom") && msg.contains("inputs"), "{msg}");
    }
}
