//! Uniform sampling from ranges and the "standard" distribution.

use super::RngCore;

/// Types samplable by `Rng::gen`.
pub trait StandardSample {
    /// Draws one value from the standard distribution (`[0, 1)` for
    /// floats, full range for integers, fair coin for `bool`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);
