//! Offline stub of the `rand 0.8` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic reimplementation of the handful of
//! `rand` items it consumes: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! deterministic, though its stream differs from upstream `StdRng`
//! (ChaCha12). All repo code seeds explicitly and only relies on
//! *reproducibility*, not on matching upstream streams.

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the
    /// same construction upstream uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod sample;
pub use sample::{SampleRange, StandardSample};

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the "standard" distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub stand-in for the
    /// upstream ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::Rng;

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
